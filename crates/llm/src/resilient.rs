//! Retry, backoff, and circuit breaking around any [`LanguageModel`].
//!
//! Production text-to-SQL sits behind a model API that throttles, times
//! out, and occasionally garbles a payload. This module contains the
//! resilience layer the pipeline wraps around every model call:
//!
//! - [`Clock`] — injectable time source. [`SystemClock`] for production,
//!   [`SimulatedClock`] for tests and chaos sweeps (no wall-clock sleeps,
//!   and the total simulated backoff is the "retry overhead" number the
//!   chaos benchmark reports).
//! - [`RetryPolicy`] / [`BreakerPolicy`] / [`ResiliencePolicy`] — plain
//!   data, so the pipeline config can carry them.
//! - [`ResilienceState`] — the shared (Arc) runtime state: one circuit
//!   breaker per [`TaskKind`], the clock, and an optional metrics sink.
//! - [`ResilientModel`] — the wrapper that retries with exponential
//!   backoff + deterministic jitter, sheds calls when a breaker is open,
//!   and records every retry as an `llm.retry` span.
//!
//! All jitter comes from [`hash01`] over (task label, seed, attempt), so
//! two runs with the same seeds produce byte-identical schedules.

use crate::model::{kind_label, CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::oracle::hash01;
use crate::prompt::TaskKind;
use genedit_telemetry::{names, MetricsRegistry, Tracer};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

// The injectable time source moved down-stack into `genedit_telemetry`
// (the SLO windows and burn-rate alerts need it too); re-export it so
// existing `genedit_llm::resilient::{Clock, …}` paths keep working.
pub use genedit_telemetry::clock::{Clock, SimulatedClock, SystemClock};

/// How many times to retry a failed call and how long to wait in between.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (1 = no retries).
    pub max_attempts: usize,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Exponential growth factor between retries.
    pub multiplier: f64,
    /// Fraction of the backoff randomized (deterministically) per retry:
    /// 0.2 means the wait is scaled by a factor in `[0.8, 1.2]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retry number `attempt` (1-based: the
    /// wait after the first failure is `backoff(task, seed, 1)`).
    pub fn backoff(&self, kind: TaskKind, seed: u64, attempt: usize) -> Duration {
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let unit = hash01(
            &[
                "retry-jitter",
                kind_label(kind),
                &seed.to_string(),
                &attempt.to_string(),
            ],
            seed,
        );
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        let jittered = (raw * factor).max(0.0);
        Duration::from_secs_f64(jittered.min(self.max_backoff.as_secs_f64()))
    }
}

/// Circuit-breaker thresholds: when to trip, how long to stay open, and
/// how many half-open probes must succeed before closing again.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures (counted per attempt) that open the breaker.
    pub failure_threshold: usize,
    /// How long an open breaker sheds calls before allowing probes.
    pub cooldown: Duration,
    /// Successful probes required to close from half-open.
    pub half_open_probes: usize,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
            half_open_probes: 2,
        }
    }
}

/// Retry + breaker policy as one value the pipeline config can carry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResiliencePolicy {
    /// Retry/backoff knobs.
    pub retry: RetryPolicy,
    /// Circuit-breaker knobs.
    pub breaker: BreakerPolicy,
}

/// One task kind's breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPosition {
    /// Calls flow normally; failures are counted.
    Closed,
    /// Calls are shed without trying the backend.
    Open,
    /// Probe mode: limited calls through, success closes the breaker.
    HalfOpen,
}

#[derive(Debug, Clone)]
enum BreakerState {
    Closed { consecutive_failures: usize },
    Open { since: Duration },
    HalfOpen { successes: usize },
}

/// Shared runtime state for a fleet of [`ResilientModel`]s: per-task-kind
/// circuit breakers, the clock, and an optional metrics registry. Clone
/// the `Arc` so the harness and the pipeline observe the same breakers.
pub struct ResilienceState {
    policy: ResiliencePolicy,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<MetricsRegistry>>,
    breakers: Mutex<BTreeMap<&'static str, BreakerState>>,
}

impl ResilienceState {
    /// Fresh state (all breakers closed) over the given policy and clock.
    pub fn new(policy: ResiliencePolicy, clock: Arc<dyn Clock>) -> ResilienceState {
        ResilienceState {
            policy,
            clock,
            metrics: None,
            breakers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Attach a metrics registry; retry/shed/breaker events get counted.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> ResilienceState {
        self.metrics = Some(metrics);
        self
    }

    /// The retry/breaker policy this state enforces.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// The clock backoffs and breaker cooldowns run on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, BreakerState>> {
        self.breakers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn incr(&self, name: &str) {
        if let Some(metrics) = &self.metrics {
            metrics.incr(name, 1);
        }
    }

    /// Current breaker position for a task kind (for tests and reports).
    pub fn breaker_position(&self, kind: TaskKind) -> BreakerPosition {
        match self.lock().get(kind_label(kind)) {
            None | Some(BreakerState::Closed { .. }) => BreakerPosition::Closed,
            Some(BreakerState::Open { since }) => {
                // Report the position a call would observe: cooled-down
                // breakers admit probes, i.e. behave as half-open.
                if self.clock.now().saturating_sub(*since) >= self.policy.breaker.cooldown {
                    BreakerPosition::HalfOpen
                } else {
                    BreakerPosition::Open
                }
            }
            Some(BreakerState::HalfOpen { .. }) => BreakerPosition::HalfOpen,
        }
    }

    /// Whether a call for `kind` may proceed. Open breakers shed until the
    /// cooldown elapses, then transition to half-open and admit probes.
    fn admit(&self, kind: TaskKind) -> bool {
        let label = kind_label(kind);
        let mut breakers = self.lock();
        match breakers.get(label) {
            None | Some(BreakerState::Closed { .. }) | Some(BreakerState::HalfOpen { .. }) => true,
            Some(BreakerState::Open { since }) => {
                if self.clock.now().saturating_sub(*since) >= self.policy.breaker.cooldown {
                    breakers.insert(label, BreakerState::HalfOpen { successes: 0 });
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&self, kind: TaskKind) {
        let label = kind_label(kind);
        let mut breakers = self.lock();
        match breakers.get(label) {
            Some(BreakerState::HalfOpen { successes }) => {
                let successes = successes + 1;
                if successes >= self.policy.breaker.half_open_probes {
                    breakers.insert(
                        label,
                        BreakerState::Closed {
                            consecutive_failures: 0,
                        },
                    );
                } else {
                    breakers.insert(label, BreakerState::HalfOpen { successes });
                }
            }
            _ => {
                breakers.insert(
                    label,
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                );
            }
        }
    }

    fn on_failure(&self, kind: TaskKind) {
        let label = kind_label(kind);
        let mut breakers = self.lock();
        let open = |breakers: &mut BTreeMap<&'static str, BreakerState>| {
            breakers.insert(
                label,
                BreakerState::Open {
                    since: self.clock.now(),
                },
            );
        };
        match breakers.get(label) {
            Some(BreakerState::HalfOpen { .. }) => {
                // A failed probe re-opens immediately.
                open(&mut breakers);
                self.incr(&format!("model.breaker.opened.{label}"));
            }
            Some(BreakerState::Open { .. }) => {}
            None | Some(BreakerState::Closed { .. }) => {
                let failures = match breakers.get(label) {
                    Some(BreakerState::Closed {
                        consecutive_failures,
                    }) => consecutive_failures + 1,
                    _ => 1,
                };
                if failures >= self.policy.breaker.failure_threshold {
                    open(&mut breakers);
                    self.incr(&format!("model.breaker.opened.{label}"));
                } else {
                    breakers.insert(
                        label,
                        BreakerState::Closed {
                            consecutive_failures: failures,
                        },
                    );
                }
            }
        }
    }
}

/// Wraps a model with bounded retries, deterministic-jitter exponential
/// backoff, and per-task-kind circuit breaking. With a tracer attached,
/// each backoff is recorded as an `llm.retry` span so retries are visible
/// in the same trace as the `llm.complete` attempts they separate.
pub struct ResilientModel<'t, M> {
    inner: M,
    state: Arc<ResilienceState>,
    tracer: Option<&'t Tracer>,
}

impl<'t, M: LanguageModel> ResilientModel<'t, M> {
    /// Wrap `inner` under a shared resilience runtime.
    pub fn new(inner: M, state: Arc<ResilienceState>) -> ResilientModel<'t, M> {
        ResilientModel {
            inner,
            state,
            tracer: None,
        }
    }

    /// Record `llm.retry` spans into `tracer` on every backoff.
    pub fn with_tracer(mut self, tracer: &'t Tracer) -> ResilientModel<'t, M> {
        self.tracer = Some(tracer);
        self
    }

    /// The shared resilience runtime (breakers + clock).
    pub fn state(&self) -> &Arc<ResilienceState> {
        &self.state
    }
}

impl<M: LanguageModel> LanguageModel for ResilientModel<'_, M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let kind = request.prompt.task;
        let label = kind_label(kind);
        if !self.state.admit(kind) {
            self.state.incr(&format!("model.shed.{label}"));
            return Err(ModelError::Exhausted {
                attempts: 0,
                last: Box::new(ModelError::Transient("circuit breaker open".into())),
            });
        }
        let policy = &self.state.policy().retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.inner.complete(request) {
                Ok(response) => {
                    self.state.on_success(kind);
                    return Ok(response);
                }
                Err(err) => {
                    self.state.on_failure(kind);
                    self.state.incr(&format!("model.error.{}", err.label()));
                    if attempt >= max_attempts || !err.is_retryable() {
                        self.state.incr(&format!("model.exhausted.{label}"));
                        return Err(ModelError::Exhausted {
                            attempts: attempt,
                            last: Box::new(err),
                        });
                    }
                    let mut backoff = policy.backoff(kind, request.seed, attempt);
                    if let ModelError::RateLimited { retry_after } = &err {
                        backoff = backoff.max(*retry_after);
                    }
                    self.state.incr(&format!("model.retry.{label}"));
                    if let Some(metrics) = &self.state.metrics {
                        metrics.observe_duration("model.backoff.ms", backoff);
                    }
                    let span = self.tracer.map(|tracer| {
                        let span = tracer.span(names::LLM_RETRY);
                        span.attr("task", label)
                            .attr("attempt", attempt)
                            .attr("backoff_ms", backoff.as_secs_f64() * 1e3)
                            .attr("cause", err.label());
                        span
                    });
                    // A cancelled request (caller gave up, or this copy
                    // lost a hedge race) must not sleep out its backoff
                    // schedule: abandon the retry loop the moment the
                    // ambient cancel scope fires.
                    let token = crate::cancel::current();
                    let slept = crate::cancel::sleep_cancellable(
                        self.state.clock().as_ref(),
                        backoff,
                        token.as_ref(),
                    );
                    if let Some(span) = span {
                        span.finish();
                    }
                    if !slept {
                        self.state.incr(&format!("model.retry.cancelled.{label}"));
                        return Err(ModelError::Exhausted {
                            attempts: attempt,
                            last: Box::new(ModelError::Transient("cancelled".into())),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Fails the first `failures` calls with `error`, then succeeds.
    struct FlakyModel {
        failures: usize,
        error: ModelError,
        calls: AtomicUsize,
    }

    impl FlakyModel {
        fn new(failures: usize, error: ModelError) -> FlakyModel {
            FlakyModel {
                failures,
                error,
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for FlakyModel {
        fn name(&self) -> &str {
            "flaky"
        }
        fn complete(&self, _: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.failures {
                Err(self.error.clone())
            } else {
                Ok(CompletionResponse::Text("ok".into()))
            }
        }
    }

    fn request(kind: TaskKind) -> CompletionRequest {
        CompletionRequest::new(Prompt::new(kind, "q"))
    }

    fn state() -> Arc<ResilienceState> {
        Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::new(SimulatedClock::new()),
        ))
    }

    #[test]
    fn retries_transient_failures_until_success() {
        let state = state();
        let model = ResilientModel::new(
            FlakyModel::new(2, ModelError::Transient("reset".into())),
            Arc::clone(&state),
        );
        let response = model.complete(&request(TaskKind::SqlGeneration));
        assert_eq!(response, Ok(CompletionResponse::Text("ok".into())));
        assert_eq!(model.inner.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let state = state();
        let model = ResilientModel::new(
            FlakyModel::new(usize::MAX, ModelError::Timeout),
            Arc::clone(&state),
        );
        let err = model
            .complete(&request(TaskKind::SqlGeneration))
            .unwrap_err();
        match err {
            ModelError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert_eq!(*last, ModelError::Timeout);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(model.inner.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = RetryPolicy::default();
        let a1 = policy.backoff(TaskKind::SqlGeneration, 7, 1);
        let a2 = policy.backoff(TaskKind::SqlGeneration, 7, 2);
        assert_eq!(a1, policy.backoff(TaskKind::SqlGeneration, 7, 1));
        // Exponential growth dominates jitter at these settings.
        assert!(a2 > a1, "{a2:?} !> {a1:?}");
        // Jitter keeps the wait within ±20% of the nominal value.
        let nominal = policy.base_backoff.as_secs_f64();
        assert!(a1.as_secs_f64() >= nominal * 0.8 && a1.as_secs_f64() <= nominal * 1.2);
        // Different seeds jitter differently.
        assert_ne!(a1, policy.backoff(TaskKind::SqlGeneration, 8, 1));
        // Capped at max_backoff.
        let deep = policy.backoff(TaskKind::SqlGeneration, 7, 30);
        assert!(deep <= policy.max_backoff);
    }

    #[test]
    fn rate_limited_waits_at_least_retry_after() {
        let clock = Arc::new(SimulatedClock::new());
        let state = Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let model = ResilientModel::new(
            FlakyModel::new(
                1,
                ModelError::RateLimited {
                    retry_after: Duration::from_secs(30),
                },
            ),
            state,
        );
        model
            .complete(&request(TaskKind::SqlGeneration))
            .expect("second call succeeds");
        assert!(clock.total_slept() >= Duration::from_secs(30));
    }

    #[test]
    fn breaker_opens_sheds_and_recovers_half_open() {
        let clock = Arc::new(SimulatedClock::new());
        let policy = ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            breaker: BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_secs(5),
                half_open_probes: 2,
            },
        };
        let state = Arc::new(ResilienceState::new(
            policy,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        // 3 single-attempt failures trip the breaker for `sql` only.
        let failing = ResilientModel::new(
            FlakyModel::new(3, ModelError::Transient("down".into())),
            Arc::clone(&state),
        );
        for _ in 0..3 {
            let _ = failing.complete(&request(TaskKind::SqlGeneration));
        }
        assert_eq!(
            state.breaker_position(TaskKind::SqlGeneration),
            BreakerPosition::Open
        );
        assert_eq!(
            state.breaker_position(TaskKind::Reformulate),
            BreakerPosition::Closed
        );
        // Shed while open: the inner model is not called.
        let before = failing.inner.calls.load(Ordering::SeqCst);
        let err = failing
            .complete(&request(TaskKind::SqlGeneration))
            .unwrap_err();
        assert!(matches!(err, ModelError::Exhausted { attempts: 0, .. }));
        assert_eq!(failing.inner.calls.load(Ordering::SeqCst), before);
        // After the cooldown the breaker admits probes (half-open); two
        // successes close it.
        clock.advance(Duration::from_secs(5));
        failing
            .complete(&request(TaskKind::SqlGeneration))
            .expect("probe 1");
        assert_eq!(
            state.breaker_position(TaskKind::SqlGeneration),
            BreakerPosition::HalfOpen
        );
        failing
            .complete(&request(TaskKind::SqlGeneration))
            .expect("probe 2");
        assert_eq!(
            state.breaker_position(TaskKind::SqlGeneration),
            BreakerPosition::Closed
        );
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let clock = Arc::new(SimulatedClock::new());
        let policy = ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            breaker: BreakerPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_secs(5),
                half_open_probes: 1,
            },
        };
        let state = Arc::new(ResilienceState::new(
            policy,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let model = ResilientModel::new(
            FlakyModel::new(usize::MAX, ModelError::Timeout),
            Arc::clone(&state),
        );
        let _ = model.complete(&request(TaskKind::PlanGeneration));
        let _ = model.complete(&request(TaskKind::PlanGeneration));
        assert_eq!(
            state.breaker_position(TaskKind::PlanGeneration),
            BreakerPosition::Open
        );
        clock.advance(Duration::from_secs(5));
        let _ = model.complete(&request(TaskKind::PlanGeneration));
        assert_eq!(
            state.breaker_position(TaskKind::PlanGeneration),
            BreakerPosition::Open
        );
    }

    #[test]
    fn retries_are_recorded_as_retry_spans_and_metrics() {
        let metrics = Arc::new(MetricsRegistry::new());
        let state = Arc::new(
            ResilienceState::new(ResiliencePolicy::default(), Arc::new(SimulatedClock::new()))
                .with_metrics(Arc::clone(&metrics)),
        );
        let tracer = Tracer::new("t");
        let model = ResilientModel::new(
            FlakyModel::new(2, ModelError::Transient("reset".into())),
            Arc::clone(&state),
        )
        .with_tracer(&tracer);
        model
            .complete(&request(TaskKind::SqlGeneration))
            .expect("third call succeeds");
        let trace = tracer.finish();
        assert_eq!(trace.count(names::LLM_RETRY), 2);
        let span = trace.find(names::LLM_RETRY).expect("retry span");
        assert_eq!(
            span.attr("task"),
            Some(&genedit_telemetry::AttrValue::Str("sql".into()))
        );
        assert_eq!(metrics.counter("model.retry.sql"), 2);
        assert_eq!(metrics.counter("model.error.transient"), 2);
        assert_eq!(metrics.snapshot().histograms["model.backoff.ms"].count, 2);
    }

    #[test]
    fn cancelled_scope_abandons_the_backoff_schedule() {
        let clock = Arc::new(SimulatedClock::new());
        let state = Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let model = ResilientModel::new(
            FlakyModel::new(usize::MAX, ModelError::Transient("down".into())),
            state,
        );
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let err = crate::cancel::with_current(&token, || {
            model.complete(&request(TaskKind::SqlGeneration))
        })
        .unwrap_err();
        // One attempt ran, then the schedule was abandoned without
        // sleeping: a hedge-lost request stops burning wall clock.
        match err {
            ModelError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 1);
                assert_eq!(*last, ModelError::Transient("cancelled".into()));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(model.inner.calls.load(Ordering::SeqCst), 1);
        assert_eq!(clock.total_slept(), Duration::ZERO);
    }

    #[test]
    fn mid_schedule_cancel_stops_after_the_current_attempt() {
        /// Fails every call; cancels `token` as a side effect of the
        /// second call, as a hedge win racing a retry loop would.
        struct CancellingModel {
            token: crate::cancel::CancelToken,
            calls: AtomicUsize,
        }
        impl LanguageModel for CancellingModel {
            fn name(&self) -> &str {
                "cancelling"
            }
            fn complete(&self, _: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 1 {
                    self.token.cancel();
                }
                Err(ModelError::Timeout)
            }
        }
        let clock = Arc::new(SimulatedClock::new());
        let policy = ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            breaker: BreakerPolicy {
                failure_threshold: usize::MAX,
                ..BreakerPolicy::default()
            },
        };
        let state = Arc::new(ResilienceState::new(
            policy,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let token = crate::cancel::CancelToken::new();
        let model = ResilientModel::new(
            CancellingModel {
                token: token.clone(),
                calls: AtomicUsize::new(0),
            },
            state,
        );
        let err = crate::cancel::with_current(&token, || {
            model.complete(&request(TaskKind::SqlGeneration))
        })
        .unwrap_err();
        // Attempt 1 failed and slept its backoff; attempt 2 failed and
        // fired the token, so backoff 2 was skipped entirely.
        assert!(matches!(err, ModelError::Exhausted { attempts: 2, .. }));
        assert_eq!(model.inner.calls.load(Ordering::SeqCst), 2);
        let first = RetryPolicy::default().backoff(TaskKind::SqlGeneration, 0, 1);
        assert_eq!(clock.total_slept(), first);
    }

    #[test]
    fn healthy_model_passes_through_without_overhead() {
        let clock = Arc::new(SimulatedClock::new());
        let state = Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let model =
            ResilientModel::new(FlakyModel::new(0, ModelError::Timeout), Arc::clone(&state));
        for _ in 0..10 {
            model
                .complete(&request(TaskKind::SqlGeneration))
                .expect("healthy");
        }
        assert_eq!(model.inner.calls.load(Ordering::SeqCst), 10);
        assert_eq!(clock.total_slept(), Duration::ZERO);
    }
}
