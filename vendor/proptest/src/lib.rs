//! Offline vendored stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use —
//! `Strategy`, `Just`, regex-literal string strategies, tuple strategies,
//! ranges, `any::<T>()`, `prop::collection::vec`, `prop::option::of`,
//! `prop_oneof!`, `prop_recursive`, the `proptest!` runner macro, and
//! `prop_assert!`/`prop_assert_eq!` — with deterministic generation and
//! **no shrinking**: a failing case panics with the case number so it can
//! be replayed (generation is seeded by test name + case index, so runs
//! are reproducible).

use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic xoshiro256** generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Seed from a test name and case index (stable across runs).
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h ^ ((case as u64) << 32 | 0x9e37))
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    pub fn int_in(&mut self, low: i128, high_exclusive: i128) -> i128 {
        let span = (high_exclusive - low) as u128;
        let offset = ((self.next_u64() as u128).wrapping_mul(span)) >> 64;
        low + offset as i128
    }
}

// ---------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    #[allow(non_snake_case)]
    pub fn Fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `depth` levels of `recurse` stacked on
    /// the leaf strategy (`_desired_size` / `_branch` accepted for API
    /// compatibility; generation picks arms uniformly so trees stay small).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct OneOf<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len());
        self.options[ix].generate(rng)
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// Integer / float ranges as strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// String literals are regex-subset strategies.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    //! Generator for the regex subset proptest string strategies use here:
    //! literal characters, character classes with ranges, groups, and the
    //! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

    use super::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, (u32, u32))>),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let atoms = parse_seq(&chars, &mut pos, pattern);
        if pos != chars.len() {
            panic!("unsupported regex `{pattern}` (stopped at {pos})");
        }
        let mut out = String::new();
        emit_seq(&atoms, rng, &mut out);
        out
    }

    fn emit_seq(atoms: &[(Atom, (u32, u32))], rng: &mut TestRng, out: &mut String) {
        for (atom, (lo, hi)) in atoms {
            let reps = if lo == hi {
                *lo
            } else {
                *lo + rng.below((*hi - *lo + 1) as usize) as u32
            };
            for _ in 0..reps {
                emit_atom(atom, rng, out);
            }
        }
    }

    fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Lit(c) => out.push(*c),
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                let mut pick = rng.below(total as usize) as u32;
                for (a, b) in ranges {
                    let span = *b as u32 - *a as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick).unwrap());
                        return;
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Atom::Group(atoms) => emit_seq(atoms, rng, out),
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(Atom, (u32, u32))> {
        let mut out = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' {
            let atom = match chars[*pos] {
                '[' => {
                    *pos += 1;
                    let mut ranges = Vec::new();
                    while *pos < chars.len() && chars[*pos] != ']' {
                        let start = chars[*pos];
                        if start == '\\' {
                            *pos += 1;
                            ranges.push((chars[*pos], chars[*pos]));
                            *pos += 1;
                            continue;
                        }
                        if *pos + 2 < chars.len()
                            && chars[*pos + 1] == '-'
                            && chars[*pos + 2] != ']'
                        {
                            ranges.push((start, chars[*pos + 2]));
                            *pos += 3;
                        } else {
                            ranges.push((start, start));
                            *pos += 1;
                        }
                    }
                    assert!(*pos < chars.len(), "unterminated class in `{pattern}`");
                    *pos += 1; // ']'
                    Atom::Class(ranges)
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pattern);
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "unterminated group in `{pattern}`"
                    );
                    *pos += 1; // ')'
                    Atom::Group(inner)
                }
                '\\' => {
                    *pos += 1;
                    let c = chars[*pos];
                    *pos += 1;
                    Atom::Lit(c)
                }
                '|' | '*' | '+' | '?' | '{' => {
                    panic!("unsupported regex construct at {pos} in `{pattern}`")
                }
                c => {
                    *pos += 1;
                    Atom::Lit(c)
                }
            };
            let quant = parse_quant(chars, pos, pattern);
            out.push((atom, quant));
        }
        out
    }

    fn parse_quant(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut lo = String::new();
                while chars[*pos].is_ascii_digit() {
                    lo.push(chars[*pos]);
                    *pos += 1;
                }
                let lo: u32 = lo.parse().expect("quantifier lower bound");
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = String::new();
                    while chars[*pos].is_ascii_digit() {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    hi.parse().expect("quantifier upper bound")
                } else {
                    lo
                };
                assert!(chars[*pos] == '}', "unterminated quantifier in `{pattern}`");
                *pos += 1;
                (lo, hi)
            }
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning a wide magnitude range.
        let mag = rng.unit_f64() * 1e9 - 5e8;
        mag + rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
    }
}

// ---------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size specifications for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*`.
pub mod nsprop {
    pub use super::collection;
    pub use super::option;
}

pub mod prelude {
    pub use super::nsprop as prop;
    pub use super::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({}:{})", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r),
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)*),
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r),
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery: treat the case as vacuously passing.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $cfg; $($rest)* }
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: $crate::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest `{}` failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @run ::core::default::Default::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let w = Strategy::generate(&"[a-z]{2,6}( [a-z]{2,6}){0,4}", &mut rng);
            assert!(w.split(' ').all(|t| (2..=6).contains(&t.len())), "{w:?}");
            let p = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_and_maps_work(
            v in prop_oneof![Just(1usize), (2usize..10).prop_map(|x| x)],
            opt in prop::option::of("[A-Z]{2,4}"),
            items in prop::collection::vec(any::<u8>(), 0..5),
        ) {
            prop_assert!(v < 10);
            if let Some(s) = &opt {
                prop_assert!((2..=4).contains(&s.len()));
            }
            prop_assert!(items.len() < 5);
        }
    }
}
