//! Offline vendored stand-in for `serde_json`: renders and parses the
//! vendored `serde` value tree as JSON. Covers the API surface this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`,
//! `to_value`, `from_value`, and `Error`.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(Error::from)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Parse a JSON document into a [`Value`], requiring full consumption.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a `.` or exponent.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => {
            expect_literal(bytes, pos, "null")?;
            Ok(Value::Null)
        }
        Some(b't') => {
            expect_literal(bytes, pos, "true")?;
            Ok(Value::Bool(true))
        }
        Some(b'f') => {
            expect_literal(bytes, pos, "false")?;
            Ok(Value::Bool(false))
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                let value = parse(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad \\u codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error::new("invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if !float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::I64(1), Value::F64(2.5)]),
            ),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
            ("u".into(), Value::U64(u64::MAX)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn float_round_trips_shortest() {
        let v = Value::F64(0.1 + 0.2);
        let mut s = String::new();
        write_value(&mut s, &v, None, 0);
        assert_eq!(parse_value(&s).unwrap(), v);
    }
}
