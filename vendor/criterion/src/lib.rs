//! Offline vendored stand-in for `criterion`.
//!
//! Same macro/builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`) backed by
//! a simple adaptive wall-clock loop: warm up briefly, pick an iteration
//! count targeting ~100ms of measurement, report mean/median/p95 per
//! benchmark. No statistics engine, plots, or baselines.

use std::time::{Duration, Instant};

/// How batched setup output is sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 0,
        }
    }

    /// Accepted for API compatibility with `Criterion::default().configure_from_args()`.
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    /// When nonzero, caps measured iterations (mirrors criterion's
    /// `sample_size` intent of bounding slow benchmarks).
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            max_iters: if self.sample_size > 0 {
                self.sample_size as u64
            } else {
                u64::MAX
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    measurement_time: Duration,
    max_iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: estimate per-iteration cost.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(20) && warmup_iters < 10_000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start
            .elapsed()
            .checked_div(warmup_iters as u32)
            .unwrap_or_default();
        let target = (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(10, 100_000) as u64;
        let iters = target.min(self.max_iters.max(1));
        self.samples.clear();
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let per_iter = start.elapsed();
        let target =
            (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 10_000) as u64;
        let iters = target.min(self.max_iters.max(1));
        self.samples.clear();
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<44} (no samples)");
            return;
        }
        self.samples.sort();
        let n = self.samples.len();
        let total: Duration = self.samples.iter().sum();
        let mean = total / n as u32;
        let median = self.samples[n / 2];
        let p95 = self.samples[(n * 95 / 100).min(n - 1)];
        println!(
            "  {id:<44} mean {:>12?}  median {:>12?}  p95 {:>12?}  (n={n})",
            mean, median, p95
        );
    }
}

/// Re-export hint for `criterion::black_box` users.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
