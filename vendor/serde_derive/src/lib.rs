//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! hand-rolled parser over `proc_macro::TokenStream` that understands the
//! item shapes this workspace actually derives on — non-generic structs
//! (named / tuple / unit) and enums (unit / newtype / tuple / struct
//! variants). Generated impls target the simplified value-tree data model
//! in the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields: just the arity.
    Tuple(usize),
    /// Named field identifiers, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected struct/enum keyword, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, got {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                t => panic!("unexpected token after struct name: {t:?}"),
            };
            Item {
                name,
                kind: ItemKind::Struct(fields),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body, got {t:?}"),
            };
            Item {
                name,
                kind: ItemKind::Enum(parse_variants(body)),
            }
        }
        other => panic!("expected struct or enum, got `{other}`"),
    }
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Count comma-separated fields at the top level, tracking `<...>` depth so
/// commas inside generic arguments don't split.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                saw_token_since_comma = false;
                count += 1;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, got {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("expected `:` after field `{name}`, got {t}"),
        }
        // Skip the type: consume until a top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name, got {t}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive (vendored): explicit enum discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => serialize_struct_body(fields),
        ItemKind::Enum(variants) => serialize_enum_body(name, variants),
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::value::Value::Object(vec![{}])", pairs.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (vname, fields) in variants {
        let arm = match fields {
            Fields::Unit => {
                format!("{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string()),")
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::serialize(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize({b})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({binds}) => ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),",
                    binds = binds.join(", ")
                )
            }
            Fields::Named(fnames) => {
                let binds = fnames.join(", ");
                let pairs: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), ::serde::value::Value::Object(vec![{pairs}]))]),",
                    pairs = pairs.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => deserialize_struct_body(name, fields),
        ItemKind::Enum(variants) => deserialize_enum_body(name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::value::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", value))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::field(pairs, \"{f}\")?"))
                .collect();
            format!(
                "let pairs = value.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", value))?;\n\
                 Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => {
                unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),"));
            }
            Fields::Tuple(1) => data_arms.push(format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::deserialize(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                data_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let items = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", inner))?;\n\
                         if items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple length for {name}::{vname}\")); }}\n\
                         Ok({name}::{vname}({items}))\n\
                     }}",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fnames) => {
                let inits: Vec<String> = fnames
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(pairs, \"{f}\")?"))
                    .collect();
                data_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let pairs = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", inner))?;\n\
                         Ok({name}::{vname} {{ {inits} }})\n\
                     }}",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
             ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error::custom(format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::value::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => Err(::serde::Error::expected(\"enum representation\", other)),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n"),
    )
}
