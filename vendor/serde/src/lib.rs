//! Offline vendored stand-in for `serde`.
//!
//! The real crates.io `serde` is unreachable in this build environment, so
//! this crate provides the same *surface* the workspace uses — the
//! `Serialize`/`Deserialize` traits plus derive macros — over a much
//! simpler data model: every value serializes into a [`value::Value`]
//! tree, and deserializes back out of one. `serde_json` (also vendored)
//! renders/parses that tree as JSON.
//!
//! Supported derive input (everything this workspace uses): plain structs
//! (named, tuple, unit) and enums (unit, newtype, tuple, struct variants)
//! without generics and without `#[serde(...)]` attributes.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    /// The serialization data model: a JSON-shaped value tree. Objects
    /// preserve insertion order so output is deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(pairs) => Some(pairs),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::I64(n) => Some(*n),
                Value::U64(n) => i64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(n) => Some(*n),
                Value::I64(n) => u64::try_from(*n).ok(),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::F64(n) => Some(*n),
                Value::I64(n) => Some(*n as f64),
                Value::U64(n) => Some(*n as f64),
                _ => None,
            }
        }

        /// Object field lookup by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }

        fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }

    impl Value {
        pub fn type_name(&self) -> &'static str {
            self.kind()
        }
    }
}

use value::Value;

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error {
            msg: format!("expected {what}, got {}", got.type_name()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Deserialize out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Look up and deserialize a named struct field (derive-macro helper).
pub fn field<T: Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, Error> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn deserialize(v: &Value) -> Result<std::time::Duration, Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| Error::expected("duration object", v))?;
        let secs: u64 = field(pairs, "secs")?;
        let nanos: u64 = field(pairs, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<(A, B), Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<(A, B, C), Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so HashMap serialization is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<&'static str, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
