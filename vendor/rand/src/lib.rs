//! Offline vendored stand-in for `rand` 0.8.
//!
//! Provides the API subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` —
//! backed by xoshiro256** seeded via SplitMix64. The streams differ from
//! upstream `rand` (which is unreachable offline), but every consumer in
//! this workspace only relies on determinism, not on specific streams.

/// Core RNG: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// A uniform value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits into [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Types uniformly samplable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in(rng: &mut dyn RngCore, low: Self, high_exclusive: Self) -> Self;
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut dyn RngCore, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling: bias is < 2^-64 * span,
                // irrelevant for a test substrate.
                let r = rng.next_u64() as u128;
                let offset = (r * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
            fn successor(self) -> $t { self + 1 }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_in(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
    fn successor(self) -> f64 {
        self
    }
}

impl SampleUniform for f32 {
    fn sample_in(rng: &mut dyn RngCore, low: f32, high: f32) -> f32 {
        assert!(low < high, "gen_range: empty range");
        low + (unit_f64(rng.next_u64()) as f32) * (high - low)
    }
    fn successor(self) -> f32 {
        self
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let mut erased = ErasedRng(rng);
        T::sample_in(&mut erased, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        let mut erased = ErasedRng(rng);
        T::sample_in(&mut erased, low, high.successor())
    }
}

struct ErasedRng<'a, R: RngCore + ?Sized>(&'a mut R);
impl<R: RngCore + ?Sized> RngCore for ErasedRng<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        let mut a = StdRng::seed_from_u64(7);
        let ours: Vec<i64> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        assert_ne!(same, ours);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..=3);
            assert!(u <= 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        let p_true = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&p_true), "{p_true}");
    }
}
